// Integration tests for the 1969 distance-vector routing mode inside the
// discrete-event simulator (the paper's section 2.1 baseline).

#include <gtest/gtest.h>

#include "src/net/builders/builders.h"
#include "src/sim/network.h"

namespace arpanet::sim {
namespace {

using net::LineType;
using routing::RoutingAlgorithm;
using util::SimTime;

net::Topology line3() {
  net::Topology t;
  const auto a = t.add_node("a");
  const auto b = t.add_node("b");
  const auto c = t.add_node("c");
  t.add_duplex(a, b, LineType::kTerrestrial56, SimTime::from_ms(5));
  t.add_duplex(b, c, LineType::kTerrestrial56, SimTime::from_ms(5));
  return t;
}

NetworkConfig dv_config() {
  NetworkConfig cfg;
  cfg.algorithm = RoutingAlgorithm::kDistanceVector;
  return cfg;
}

TEST(DistanceVectorTest, TablesConvergeOnIdleNetwork) {
  const net::Topology topo = line3();
  Network net{topo, dv_config()};
  // A few exchange rounds (2/3 s each) are enough on a 3-node line.
  net.run_for(SimTime::from_sec(10));
  // Idle queues: metric = bias (1) per hop, so distance = hop count.
  EXPECT_DOUBLE_EQ(net.psn(0).dv_distance(2), 2.0);
  EXPECT_DOUBLE_EQ(net.psn(2).dv_distance(0), 2.0);
  EXPECT_EQ(net.psn(0).dv_next_hop(1), 0u);
}

TEST(DistanceVectorTest, DeliversTraffic) {
  const net::Topology topo = line3();
  Network net{topo, dv_config()};
  traffic::TrafficMatrix m{3};
  m.set(0, 2, 5e3);
  net.add_traffic(m);
  net.run_for(SimTime::from_sec(60));
  EXPECT_GT(net.stats().packets_delivered, 200);
  EXPECT_DOUBLE_EQ(net.stats().path_hops.mean(), 2.0);
}

TEST(DistanceVectorTest, ConsumesMuchMoreControlBandwidthThanSpf) {
  const auto two = net::builders::two_region(5);
  auto run = [&](RoutingAlgorithm algo) {
    NetworkConfig cfg;
    cfg.algorithm = algo;
    Network net{two.topo, cfg};
    net.add_traffic(traffic::TrafficMatrix::uniform(two.topo.node_count(), 20e3));
    net.run_for(SimTime::from_sec(100));
    return net.stats().update_packets_sent;
  };
  const long dv = run(RoutingAlgorithm::kDistanceVector);
  const long spf = run(RoutingAlgorithm::kSpf);
  // Full-table exchange every 2/3 s on every link far outpaces SPF's
  // significance-gated flooding (and each DV packet is bigger, growing with
  // the node count).
  EXPECT_GT(dv, 3 * spf);
}

TEST(DistanceVectorTest, ReroutesAfterTrunkFailure) {
  // Square topology: a-b-d and a-c-d.
  net::Topology t;
  const auto a = t.add_node("a");
  const auto b = t.add_node("b");
  const auto c = t.add_node("c");
  const auto d = t.add_node("d");
  const auto ab = t.add_duplex(a, b, LineType::kTerrestrial56);
  t.add_duplex(a, c, LineType::kTerrestrial56);
  t.add_duplex(b, d, LineType::kTerrestrial56);
  t.add_duplex(c, d, LineType::kTerrestrial56);

  Network net{t, dv_config()};
  traffic::TrafficMatrix m{4};
  m.set(a, d, 8e3);
  net.add_traffic(m);
  net.run_for(SimTime::from_sec(30));
  net.set_trunk_up(ab, false);
  net.run_for(SimTime::from_sec(30));
  net.reset_stats();
  net.run_for(SimTime::from_sec(60));
  EXPECT_GT(net.stats().packets_delivered, 300);
  EXPECT_EQ(net.stats().packets_dropped_unreachable, 0);
}

/// The section 2.1 story, measured: under load the volatile queue-length
/// metric forms transient loops (visible as loop drops and inflated paths),
/// which the 1979 SPF scheme eliminated.
TEST(DistanceVectorTest, LoopsUnderLoadVersusSpf) {
  const auto two = net::builders::two_region(5);
  auto run = [&](RoutingAlgorithm algo) {
    NetworkConfig cfg;
    cfg.algorithm = algo;
    cfg.metric = metrics::MetricKind::kDspf;
    cfg.hop_limit = 40;
    cfg.seed = 99;
    Network net{two.topo, cfg};
    traffic::TrafficMatrix m{two.topo.node_count()};
    const double per_pair = 90e3 / static_cast<double>(2 * 5 * 5);
    for (const net::NodeId x : two.region1) {
      for (const net::NodeId y : two.region2) {
        m.set(x, y, per_pair);
        m.set(y, x, per_pair);
      }
    }
    net.add_traffic(m);
    net.run_for(SimTime::from_sec(300));
    return net.stats();
  };
  const NetworkStats dv = run(RoutingAlgorithm::kDistanceVector);
  const NetworkStats spf = run(RoutingAlgorithm::kSpf);
  EXPECT_EQ(spf.packets_dropped_loop, 0);
  EXPECT_GE(dv.packets_dropped_loop, 0);  // loops possible, not guaranteed
  // The stale-information algorithm wastes hops relative to SPF.
  EXPECT_GE(dv.path_hops.mean(), spf.path_hops.mean() * 0.9);
}

TEST(DistanceVectorTest, NodeCrashHandledWithoutSpfUpdates) {
  // Taking trunks down in 1969 mode must not flood SPF-style updates; the
  // neighbors learn through the table exchanges.
  const auto two = net::builders::two_region(4);
  NetworkConfig cfg = dv_config();
  Network net{two.topo, cfg};
  net.add_traffic(traffic::TrafficMatrix::uniform(two.topo.node_count(), 30e3));
  net.run_for(SimTime::from_sec(30));
  const long updates_before = net.stats().updates_originated;
  net.set_trunk_up(two.link_a, false);
  // Updates keep accruing only at the periodic exchange rate, not as an
  // immediate event-driven flood.
  const long updates_right_after = net.stats().updates_originated;
  EXPECT_EQ(updates_right_after, updates_before);
  net.run_for(SimTime::from_sec(30));
  net.reset_stats();
  net.run_for(SimTime::from_sec(60));
  EXPECT_GT(net.stats().packets_delivered, 1000);  // rerouted via link B
  net.set_trunk_up(two.link_a, true);
  net.run_for(SimTime::from_sec(30));
  EXPECT_GT(net.stats().packets_delivered, 1000);
}

TEST(DistanceVectorTest, DeterministicForSeed) {
  const net::Topology topo = line3();
  auto run = [&] {
    NetworkConfig cfg = dv_config();
    cfg.seed = 7;
    Network net{topo, cfg};
    net.add_traffic(traffic::TrafficMatrix::uniform(3, 20e3));
    net.run_for(SimTime::from_sec(60));
    return net.stats().packets_delivered;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace arpanet::sim
