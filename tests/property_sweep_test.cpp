// Cross-cutting property sweeps: invariants that must hold for every
// (metric x line type x topology) combination, run as parameterized suites.

#include <gtest/gtest.h>

#include "src/analysis/metric_map.h"
#include "src/analysis/response_map.h"
#include "src/net/builders/builders.h"
#include "src/sim/host_flow.h"
#include "src/sim/network.h"

namespace arpanet {
namespace {

using metrics::MetricKind;
using net::LineType;

const core::LineParamsTable kParams = core::LineParamsTable::arpanet_defaults();

// ---- metric maps: every kind on every line type ----

class MetricMapSweep
    : public ::testing::TestWithParam<std::tuple<MetricKind, int>> {};

INSTANTIATE_TEST_SUITE_P(
    KindsAndTypes, MetricMapSweep,
    ::testing::Combine(::testing::Values(MetricKind::kMinHop, MetricKind::kDspf,
                                         MetricKind::kHnSpf),
                       ::testing::Range(0, net::kLineTypeCount)));

TEST_P(MetricMapSweep, MonotoneBoundedAndNormalizedAboveOneHop) {
  const auto [kind, type_index] = GetParam();
  const auto type = static_cast<LineType>(type_index);
  const analysis::MetricMap map{kind, type, kParams,
                                net::info(type).default_prop_delay};
  double prev = 0.0;
  for (double u = 0.0; u <= 1.0 + 1e-9; u += 0.02) {
    const double cost = map.cost(u);
    EXPECT_GE(cost, prev) << to_string(kind) << " u=" << u;  // monotone
    prev = cost;
    // Faster-than-reference lines price below one 56k hop by design, but
    // never below ~0.8 of it (the fastest type's base is 26/30).
    EXPECT_GE(map.normalized_cost(u), kind == MetricKind::kMinHop ? 1.0 : 0.85);
  }
  EXPECT_GE(map.max_cost(), map.idle_cost());
}

class HnMapSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Types, HnMapSweep,
                         ::testing::Range(0, net::kLineTypeCount));

TEST_P(HnMapSweep, NeverExceedsThreeHopsOfItsOwnBase) {
  const auto type = static_cast<LineType>(GetParam());
  const analysis::MetricMap map{MetricKind::kHnSpf, type, kParams,
                                util::SimTime::zero()};
  const double base = kParams.for_type(type).base_min;
  for (double u = 0.0; u <= 1.0 + 1e-9; u += 0.05) {
    EXPECT_LE(map.cost(u) / base, 3.0 + 1e-9);
  }
}

// ---- response maps on several topologies ----

class ResponseMapSweep : public ::testing::TestWithParam<int> {
 protected:
  net::Topology make_topo() const {
    switch (GetParam()) {
      case 0: return net::builders::ring(8);
      case 1: return net::builders::grid(4, 3);
      default: return net::builders::arpanet87().topo;
    }
  }
};

INSTANTIATE_TEST_SUITE_P(Topologies, ResponseMapSweep, ::testing::Range(0, 3));

TEST_P(ResponseMapSweep, BaseOneMonotoneNonNegative) {
  const net::Topology topo = make_topo();
  const auto matrix = traffic::TrafficMatrix::uniform(topo.node_count(), 1e6);
  const auto map = analysis::NetworkResponseMap::build(topo, matrix);
  EXPECT_NEAR(map.traffic_fraction(1.0), 1.0, 1e-9);
  double prev = 2.0;
  for (double c = 0.8; c <= 9.0; c += 0.1) {
    const double f = map.traffic_fraction(c);
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, prev + 1e-9);
    prev = f;
  }
}

// ---- incremental SPF under sentinel (link-down) costs ----

TEST(IncrementalSentinelTest, DownCostExtremesMatchFullRecompute) {
  util::Rng rng{321};
  const net::Topology t = net::builders::random_connected(14, 10, rng);
  routing::LinkCosts costs(t.link_count(), 30.0);
  routing::IncrementalSpf inc{t, 0, costs};
  for (int step = 0; step < 40; ++step) {
    const auto link = static_cast<net::LinkId>(rng.uniform_index(t.link_count()));
    // Flip between normal, saturated and down-sentinel costs.
    const double choices[] = {30.0, 90.0, 1e7};
    const double cost = choices[rng.uniform_index(3)];
    inc.set_cost(link, cost);
    costs[link] = cost;
    const routing::SpfTree full = routing::Spf::compute(t, 0, costs);
    for (net::NodeId v = 0; v < t.node_count(); ++v) {
      ASSERT_DOUBLE_EQ(inc.tree().dist[v], full.dist[v]) << step;
      ASSERT_EQ(inc.tree().first_hop[v], full.first_hop[v]) << step;
    }
  }
}

// ---- whole-network determinism at full scale ----

TEST(DeterminismTest, Arpanet87RunIsBitReproducible) {
  auto run = [] {
    const auto net87 = net::builders::arpanet87();
    sim::NetworkConfig cfg;
    cfg.seed = 0xabcdef;
    sim::Network net{net87.topo, cfg};
    net.add_traffic(traffic::TrafficMatrix::peak_hour(
        net87.topo.node_count(), 400e3, util::Rng{9}));
    net.run_for(util::SimTime::from_sec(120));
    const auto& s = net.stats();
    return std::tuple{s.packets_generated, s.packets_delivered,
                      s.packets_dropped_queue, s.updates_originated,
                      s.update_packets_sent, s.one_way_delay_ms.mean(),
                      s.bits_delivered};
  };
  EXPECT_EQ(run(), run());
}

TEST(DeterminismTest, HostFlowRunIsReproducible) {
  auto run = [] {
    const auto two = net::builders::two_region(4);
    sim::Network net{two.topo, sim::NetworkConfig{}};
    sim::HostFlowLayer host{net, sim::HostFlowConfig{}};
    host.add_traffic(traffic::TrafficMatrix::uniform(two.topo.node_count(), 80e3));
    net.run_for(util::SimTime::from_sec(90));
    return std::tuple{host.messages_completed(), host.retransmissions(),
                      host.message_delay_ms().mean()};
  };
  EXPECT_EQ(run(), run());
}

// ---- live route queries ----

TEST(CurrentRouteTest, MatchesDeliveredHops) {
  const auto net87 = net::builders::arpanet87();
  sim::Network net{net87.topo, sim::NetworkConfig{}};
  net.add_traffic(
      traffic::TrafficMatrix::uniform(net87.topo.node_count(), 100e3));
  net.run_for(util::SimTime::from_sec(60));
  // Between updates, routes exist and terminate for every pair.
  for (net::NodeId s = 0; s < net87.topo.node_count(); s += 7) {
    for (net::NodeId d = 0; d < net87.topo.node_count(); d += 5) {
      if (s == d) continue;
      const routing::PathTrace r = net.current_route(s, d);
      EXPECT_TRUE(r.reached);
      EXPECT_FALSE(r.looped);
      EXPECT_GE(r.hops(), 1);
    }
  }
  const auto route = net.current_route(net87.mit, net87.ucla);
  EXPECT_GE(route.hops(), 3);  // coast to coast is never adjacent
}

// ---- host-flow sanity across windows ----

class GoodputBound : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Windows, GoodputBound, ::testing::Values(1, 2, 8));

TEST_P(GoodputBound, GoodputNeverExceedsOffered) {
  net::Topology t;
  const auto a = t.add_node("a");
  const auto b = t.add_node("b");
  t.add_duplex(a, b, net::LineType::kTerrestrial56);
  sim::Network net{t, sim::NetworkConfig{}};
  sim::HostFlowConfig hcfg;
  hcfg.window = GetParam();
  sim::HostFlowLayer host{net, hcfg};
  host.add_pair(a, b, 30e3);
  net.run_for(util::SimTime::from_sec(200));
  EXPECT_LE(host.goodput_bps(), 33e3);  // offered + sampling slack
  EXPECT_GT(host.goodput_bps(), 20e3);
  EXPECT_LE(host.messages_completed(), host.messages_offered());
}

}  // namespace
}  // namespace arpanet
