#!/usr/bin/env bash
# Format gate: fails when any tracked C++ source drifts from .clang-format.
#
# Usage:
#   tools/format_check.sh          # check only (CI mode)
#   tools/format_check.sh --fix    # rewrite files in place
#
# Environment:
#   CLANG_FORMAT   clang-format binary to use (default: clang-format)
#
# Exit status: 0 when formatting is clean (or the tool is unavailable — the
# gate is advisory on machines without clang-format; CI installs it), 1 on
# drift in check mode.
set -euo pipefail

cd "$(dirname "$0")/.."
clang_format="${CLANG_FORMAT:-clang-format}"
mode="${1:-"--check"}"

if ! command -v "${clang_format}" >/dev/null 2>&1; then
  echo "format_check.sh: ${clang_format} not found; skipping the format gate" \
       "(install clang-format to enforce it locally)" >&2
  exit 0
fi

mapfile -t files < <(git ls-files '*.cpp' '*.h')
if [[ ${#files[@]} -eq 0 ]]; then
  echo "format_check.sh: no tracked C++ sources found" >&2
  exit 2
fi

case "${mode}" in
  --fix)
    "${clang_format}" -i "${files[@]}"
    echo "format_check.sh: reformatted ${#files[@]} files"
    ;;
  --check)
    # --dry-run --Werror makes clang-format exit nonzero on any diff.
    "${clang_format}" --dry-run --Werror "${files[@]}"
    echo "format_check.sh: ${#files[@]} files clean"
    ;;
  *)
    echo "usage: tools/format_check.sh [--fix|--check]" >&2
    exit 2
    ;;
esac
