#!/usr/bin/env bash
# profile.sh — CPU-profile the bench_report battery and drop a report
# artifact (docs/tools.md#profilesh).
#
#   tools/profile.sh [--battery=smoke|battery] [--build-dir=build-profile]
#                    [--out=profile_report.txt]
#
# Prefers `perf` (sampling; no rebuild beyond RelWithDebInfo, and a
# flamegraph .svg lands next to the report when the FlameGraph scripts are
# on PATH). Falls back to gprof on machines without perf: the build
# directory is configured with -pg and the call-graph report comes from the
# instrumented run's gmon.out. Either way the human-readable report is
# written to --out, so "what is hot in the simulator right now" is one
# command and one artifact.
set -euo pipefail

BATTERY=smoke
BUILD_DIR=build-profile
OUT=profile_report.txt
for arg in "$@"; do
  case "$arg" in
    --battery=*) BATTERY="${arg#*=}" ;;
    --build-dir=*) BUILD_DIR="${arg#*=}" ;;
    --out=*) OUT="${arg#*=}" ;;
    *)
      echo "profile.sh: unknown flag $arg" >&2
      echo "usage: tools/profile.sh [--battery=smoke|battery]" \
           "[--build-dir=build-profile] [--out=profile_report.txt]" >&2
      exit 2
      ;;
  esac
done

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"
OUT="$(realpath -m "$OUT")"

if command -v perf >/dev/null 2>&1; then
  # Sampling profiler: plain optimized build with symbols, no recompile
  # flags needed.
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "$BUILD_DIR" -j --target bench_report >/dev/null
  PERF_DATA="$BUILD_DIR/perf.data"
  perf record -g --output="$PERF_DATA" -- \
    "$BUILD_DIR/tools/bench_report" --scenario="$BATTERY" --threads=1 \
    --out="$BUILD_DIR/profile_metrics.json" >/dev/null
  perf report --stdio --input="$PERF_DATA" > "$OUT"
  # Optional flamegraph when Brendan Gregg's scripts are installed.
  if command -v stackcollapse-perf.pl >/dev/null 2>&1 &&
     command -v flamegraph.pl >/dev/null 2>&1; then
    SVG="${OUT%.txt}.svg"
    perf script --input="$PERF_DATA" | stackcollapse-perf.pl |
      flamegraph.pl > "$SVG"
    echo "profile.sh: flamegraph at $SVG"
  fi
  echo "profile.sh: perf report ($BATTERY battery) at $OUT"
else
  # gprof fallback: instrumented build (-pg), run from the build directory
  # so gmon.out lands beside the binary.
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS=-pg -DCMAKE_EXE_LINKER_FLAGS=-pg >/dev/null
  cmake --build "$BUILD_DIR" -j --target bench_report >/dev/null
  (cd "$BUILD_DIR" &&
   ./tools/bench_report --scenario="$BATTERY" --threads=1 \
     --out=profile_metrics.json >/dev/null)
  gprof "$BUILD_DIR/tools/bench_report" "$BUILD_DIR/gmon.out" > "$OUT"
  echo "profile.sh: gprof report ($BATTERY battery) at $OUT"
fi
