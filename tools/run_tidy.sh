#!/usr/bin/env bash
# clang-tidy lint gate over the project's compile_commands.json.
#
# Usage:
#   tools/run_tidy.sh [build-dir]        # default: build
#
# Environment:
#   CLANG_TIDY   clang-tidy binary to use (default: clang-tidy)
#   TIDY_JOBS    parallel jobs (default: nproc)
#
# Exit status: 0 when the tree is clean (or the tool is unavailable — the
# gate is advisory on machines without clang-tidy; CI installs it), 1 on
# findings, 2 on usage errors. The check configuration lives in .clang-tidy
# at the repository root (WarningsAsErrors: '*', so any finding fails).
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build}"
clang_tidy="${CLANG_TIDY:-clang-tidy}"
jobs="${TIDY_JOBS:-$(nproc)}"

if ! command -v "${clang_tidy}" >/dev/null 2>&1; then
  echo "run_tidy.sh: ${clang_tidy} not found; skipping the lint gate" \
       "(install clang-tidy to enforce it locally)" >&2
  echo "run_tidy.sh: the in-tree analyzer still applies without clang:" \
       "build the arpalint target and run 'ctest -R arpalint', or" \
       "'<build>/tools/arpalint src tools tests' directly" \
       "(docs/static_analysis.md)" >&2
  exit 0
fi

db="${build_dir}/compile_commands.json"
if [[ ! -f "${db}" ]]; then
  echo "run_tidy.sh: ${db} not found." >&2
  echo "Configure first: cmake -B ${build_dir} -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 2
fi

# Project translation units only: skip anything compiled from outside the
# repository (e.g. the instrumented googletest sources a sanitizer build
# pulls in from /usr/src).
repo_root="$(pwd)"
mapfile -t files < <(jq -r '.[].file' "${db}" | sort -u |
                     grep -F "${repo_root}/" || true)
if [[ ${#files[@]} -eq 0 ]]; then
  echo "run_tidy.sh: no project translation units in ${db}" >&2
  exit 2
fi

echo "run_tidy.sh: linting ${#files[@]} translation units with ${jobs} jobs"
printf '%s\0' "${files[@]}" |
  xargs -0 -n 1 -P "${jobs}" "${clang_tidy}" -p "${build_dir}" --quiet
echo "run_tidy.sh: clean"
