// arpanet_sim: command-line driver for whole-network experiments.
//
// Usage:
//   arpanet_sim [--topology=arpanet87|two-region|ring:N|grid:WxH|<spec>|<file>]
//               [--metric=min-hop|dspf|hnspf] [--algorithm=spf|dv]
//               [--multipath] [--load-kbps=400] [--shape=uniform|peak-hour]
//               [--warmup-sec=120] [--window-sec=300] [--seed=N]
//               [--queue-capacity=40] [--shards=K]
//               [--fail-trunk=A-B@T] [--recover-trunk=A-B@T]
//               [--utilization] [--write-topology]
//
// --shards=K runs the sharded parallel engine (K worker threads over one
// network; see docs/performance.md for the determinism contract: runs are
// reproducible for a fixed K, and identical across K up to the ordering of
// cross-shard packets arriving in the same microsecond tick). With K>1 the
// trunk events compile into the fault engine: --fail-trunk takes the trunk
// down at T and --recover-trunk supplies the heal time (required — a
// standalone --recover-trunk is a usage error at K>1).
//
// A <spec> is any TopologyBuilder registry family with key=value parameters,
// e.g. ba:nodes=10000,seed=7,m=2 or leo-grid:planes=20,per_plane=20
// (see docs/topologies.md for the families and their parameters).
//
// Examples:
//   arpanet_sim --metric=dspf --load-kbps=420
//   arpanet_sim --topology=my_net.topo --metric=hnspf --fail-trunk=MIT-BBN@200
//   arpanet_sim --topology=ring:8 --write-topology
//   arpanet_sim --topology=waxman:nodes=256,seed=3 --metric=hnspf

#include <cstdio>
#include <fstream>
#include <iostream>

#include "src/net/builders/builders.h"
#include "src/net/builders/registry.h"
#include "src/net/topology_io.h"
#include "src/sim/fault_plan.h"
#include "src/sim/network.h"
#include "src/sim/scenario.h"
#include "src/util/flags.h"

namespace {

using namespace arpanet;

net::Topology load_topology(const std::string& spec) {
  if (spec == "arpanet87") return net::builders::arpanet87().topo;
  if (spec == "two-region") return net::builders::two_region().topo;
  if (spec.starts_with("ring:")) {
    return net::builders::ring(std::stoi(spec.substr(5)));
  }
  if (spec.starts_with("grid:")) {
    const std::string dims = spec.substr(5);
    const std::size_t x = dims.find('x');
    if (x == std::string::npos) {
      throw std::invalid_argument("grid spec must be grid:WxH");
    }
    return net::builders::grid(std::stoi(dims.substr(0, x)),
                               std::stoi(dims.substr(x + 1)));
  }
  // Any registry family, parameterized "family:key=value,...".
  const std::string family = spec.substr(0, spec.find(':'));
  if (net::TopologyBuilder::registry().has_family(family)) {
    return net::TopologyBuilder::registry().build(net::GraphSpec::parse(spec));
  }
  std::ifstream file{spec};
  if (!file) throw std::invalid_argument("cannot open topology file " + spec);
  return net::parse_topology(file);
}

metrics::MetricKind parse_metric(const std::string& name) {
  if (name == "min-hop") return metrics::MetricKind::kMinHop;
  if (name == "dspf") return metrics::MetricKind::kDspf;
  if (name == "hnspf") return metrics::MetricKind::kHnSpf;
  throw std::invalid_argument("unknown metric " + name +
                              " (min-hop|dspf|hnspf)");
}

struct TrunkEvent {
  net::LinkId link;
  util::SimTime at;
  bool up;
};

/// Parses "A-B@T" against the topology's node names.
TrunkEvent parse_trunk_event(const net::Topology& topo, const std::string& spec,
                             bool up) {
  const std::size_t at_pos = spec.rfind('@');
  const std::size_t dash = spec.find('-');
  if (at_pos == std::string::npos || dash == std::string::npos || dash > at_pos) {
    throw std::invalid_argument("trunk event must look like A-B@seconds: " + spec);
  }
  const net::NodeId a = topo.node_by_name(spec.substr(0, dash));
  const net::NodeId b = topo.node_by_name(spec.substr(dash + 1, at_pos - dash - 1));
  const double t = std::stod(spec.substr(at_pos + 1));
  for (const net::LinkId lid : topo.out_links(a)) {
    if (topo.link(lid).to == b) {
      return TrunkEvent{lid, util::SimTime::from_sec(t), up};
    }
  }
  throw std::invalid_argument("no trunk between the named nodes: " + spec);
}

int run(const util::Flags& flags) {
  const net::Topology topo =
      load_topology(flags.get_string("topology", "arpanet87"));

  if (flags.get_bool("write-topology")) {
    net::write_topology(std::cout, topo);
    return 0;
  }

  sim::NetworkConfig cfg;
  cfg.metric = parse_metric(flags.get_string("metric", "hnspf"));
  cfg.algorithm = flags.get_string("algorithm", "spf") == "dv"
                      ? routing::RoutingAlgorithm::kDistanceVector
                      : routing::RoutingAlgorithm::kSpf;
  cfg.multipath = flags.get_bool("multipath");
  cfg.queue_capacity = static_cast<int>(flags.get_long("queue-capacity", 40));
  cfg.seed = static_cast<std::uint64_t>(flags.get_long("seed", 0x1987));
  cfg.shards = static_cast<int>(flags.get_long("shards", 1));

  const double load_bps = flags.get_double("load-kbps", 400.0) * 1e3;
  const std::string shape = flags.get_string("shape", "peak-hour");
  const auto warmup =
      util::SimTime::from_sec(flags.get_double("warmup-sec", 120.0));
  const auto window =
      util::SimTime::from_sec(flags.get_double("window-sec", 300.0));

  std::vector<TrunkEvent> events;
  if (const auto f = flags.get("fail-trunk")) {
    events.push_back(parse_trunk_event(topo, *f, /*up=*/false));
  }
  if (const auto r = flags.get("recover-trunk")) {
    events.push_back(parse_trunk_event(topo, *r, /*up=*/true));
  }
  const bool show_utilization = flags.get_bool("utilization");

  for (const std::string& u : flags.unknown()) {
    std::fprintf(stderr, "unknown flag --%s (see header of arpanet_sim.cpp)\n",
                 u.c_str());
    return 2;
  }

  sim::Network net{topo, cfg};
  const auto matrix = shape == "uniform"
                          ? traffic::TrafficMatrix::uniform(topo.node_count(),
                                                            load_bps)
                          : traffic::TrafficMatrix::peak_hour(
                                topo.node_count(), load_bps,
                                util::Rng{cfg.seed ^ 0xfeedULL});
  net.add_traffic(matrix);

  if (cfg.shards > 1 && !events.empty()) {
    // A scheduled callback runs on shard 0 and may not touch links another
    // shard owns, so under the sharded engine the trunk events compile into
    // the fault engine, which dispatches each action on its owning shard.
    const TrunkEvent* down = nullptr;
    const TrunkEvent* up = nullptr;
    for (const TrunkEvent& e : events) {
      (e.up ? up : down) = &e;
    }
    if (down == nullptr) {
      throw std::invalid_argument(
          "--recover-trunk without --fail-trunk is not supported with "
          "--shards > 1 (the fault engine needs the down transition)");
    }
    const util::SimTime heal = up != nullptr ? up->at : warmup + window;
    if (heal <= down->at) {
      throw std::invalid_argument(
          "--recover-trunk must be after --fail-trunk");
    }
    sim::FaultPlan plan;
    plan.flap_link(down->link, down->at, heal - down->at);
    net.install_faults(plan, warmup + window);
  } else {
    for (const TrunkEvent& e : events) {
      // Trunk events are wall-clock (from t=0), applied via the simulator.
      net.simulator().schedule_at(
          e.at, [&net, e] { net.set_trunk_up(e.link, e.up); });
    }
  }

  net.run_for(warmup);
  net.reset_stats();
  net.run_for(window);

  const auto ind = net.indicators(to_string(cfg.metric));
  std::printf("topology    %zu nodes, %zu trunks\n", topo.node_count(),
              topo.trunk_count());
  std::printf("routing     %s / %s%s\n", to_string(cfg.algorithm),
              to_string(cfg.metric), cfg.multipath ? " + multipath" : "");
  std::printf("offered     %.1f kb/s (%s), window %.0f s after %.0f s warmup\n",
              load_bps / 1e3, shape.c_str(), window.sec(), warmup.sec());
  std::printf("delivered   %.1f kb/s (%.1f pkt/s)\n",
              ind.internode_traffic_kbps, ind.delivered_packets_per_sec);
  std::printf("delay       %.1f ms round trip\n", ind.round_trip_delay_ms);
  std::printf("paths       %.2f hops actual vs %.2f minimum (ratio %.3f)\n",
              ind.actual_path_hops, ind.minimum_path_hops, ind.path_ratio());
  std::printf("updates     %.3f per trunk per second, node period %.1f s\n",
              ind.updates_per_trunk_sec, ind.update_period_per_node_sec);
  const auto& s = net.stats();
  std::printf("drops       %ld queue, %ld loop, %ld unreachable\n",
              s.packets_dropped_queue, s.packets_dropped_loop,
              s.packets_dropped_unreachable);

  if (show_utilization) {
    std::printf("\ntrunk utilization (last bucket, per direction):\n");
    const std::size_t bucket = static_cast<std::size_t>(
        net.now().us() / cfg.stats_bucket.us()) - 1;
    for (std::size_t l = 0; l < topo.link_count(); l += 2) {
      const net::Link& link = topo.link(static_cast<net::LinkId>(l));
      std::printf("  %-12s <-> %-12s %-19s %5.1f%% / %5.1f%%\n",
                  std::string(topo.node_name(link.from)).c_str(),
                  std::string(topo.node_name(link.to)).c_str(),
                  std::string(to_string(link.type)).c_str(),
                  100.0 * net.link_utilization(link.id, bucket),
                  100.0 * net.link_utilization(link.reverse, bucket));
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(util::Flags{argc, argv});
  } catch (const std::exception& e) {
    std::fprintf(stderr, "arpanet_sim: %s\n", e.what());
    return 1;
  }
}
