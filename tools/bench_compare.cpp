// bench_compare: diffs two arpanet-bench-metrics documents and fails on
// regressions (src/obs/bench_compare.h).
//
//   bench_compare --baseline=bench/baseline/BENCH_metrics.json
//                 --current=BENCH_metrics.json [--noise=0.10] [--work-noise=0]
//                 [--rates-from=PREV_ARTIFACT.json] [--min-shard-speedup=0]
//
// --rates-from enables the rolling artifact-to-artifact mode: deterministic
// work fields still diff exactly against --baseline, but the throughput
// noise band anchors to the previous run's artifact (same machine class),
// which supports a much tighter --noise than the cross-machine committed
// baseline. Rolling mode also requires the artifact's build_flavor to match
// the current document's (plain vs LTO rates must never mix).
//
// --min-shard-speedup=N fails any multi-shard cell of the current document's
// "shards" section whose wall-time speedup over the single-shard run is
// below N (0 = off; set a floor matched to the runner's core count).
//
// Exit codes: 0 = within tolerance, 1 = regression or incomparable cells,
// 2 = usage/IO/parse error. The CI bench-smoke job runs this against the
// committed baseline so an events_per_sec regression (or any drift in the
// deterministic work fields) fails the build instead of rotting in an
// artifact nobody reads.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/obs/bench_compare.h"
#include "src/util/flags.h"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace arpanet;

  const util::Flags flags{argc, argv};
  const std::string baseline_path = flags.get_string("baseline", "");
  const std::string current_path = flags.get_string("current", "");
  const std::string rates_path = flags.get_string("rates-from", "");
  obs::CompareOptions options;
  options.rate_noise = flags.get_double("noise", options.rate_noise);
  options.work_noise = flags.get_double("work-noise", options.work_noise);
  options.min_shard_speedup =
      flags.get_double("min-shard-speedup", options.min_shard_speedup);
  for (const std::string& f : flags.unknown()) {
    std::cerr << "bench_compare: unknown flag --" << f << "\n";
    return 2;
  }
  if (baseline_path.empty() || current_path.empty()) {
    std::cerr << "usage: bench_compare --baseline=FILE --current=FILE"
                 " [--noise=0.10] [--work-noise=0] [--rates-from=FILE]"
                 " [--min-shard-speedup=0]\n";
    return 2;
  }

  obs::CompareReport report;
  try {
    if (rates_path.empty()) {
      report = obs::compare_bench_reports(read_file(baseline_path),
                                          read_file(current_path), options);
    } else {
      report = obs::compare_bench_reports(read_file(baseline_path),
                                          read_file(current_path),
                                          read_file(rates_path), options);
    }
  } catch (const std::exception& e) {
    std::cerr << "bench_compare: " << e.what() << "\n";
    return 2;
  }

  report.write_text(std::cout);
  return report.ok() ? 0 : 1;
}
