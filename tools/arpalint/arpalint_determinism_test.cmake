# Byte-determinism check: two arpalint --json runs over the same tree must
# produce identical bytes (findings are sorted, no timestamps/host state).
# Invoked by the arpalint_json_determinism ctest entry with
# -DARPALINT=<binary> -DROOT=<repo root> -DWORK=<scratch dir>.

if(NOT ARPALINT OR NOT ROOT OR NOT WORK)
  message(FATAL_ERROR "usage: cmake -DARPALINT=... -DROOT=... -DWORK=... -P ${CMAKE_CURRENT_LIST_FILE}")
endif()

foreach(run 1 2)
  execute_process(COMMAND ${ARPALINT} --root=${ROOT}
                          --json=${WORK}/arpalint_run${run}.json
                          src tools tests
                  OUTPUT_QUIET RESULT_VARIABLE rc)
  if(rc GREATER 1)
    message(FATAL_ERROR "arpalint run ${run} failed with exit ${rc}")
  endif()
endforeach()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        ${WORK}/arpalint_run1.json ${WORK}/arpalint_run2.json
                RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR "arpalint --json output differs between two identical runs")
endif()
message(STATUS "arpalint JSON is byte-identical across runs")
