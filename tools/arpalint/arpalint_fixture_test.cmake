# Runs arpalint over the self-test fixture trees.
#
# tree_bad must exit 1 and report every rule at least once; tree_ok must
# exit 0 with no findings. Invoked by the arpalint_fixtures ctest entry with
# -DARPALINT=<binary> -DFIXTURES=<tests/lint_fixtures>.

if(NOT ARPALINT OR NOT FIXTURES)
  message(FATAL_ERROR "usage: cmake -DARPALINT=... -DFIXTURES=... -P ${CMAKE_CURRENT_LIST_FILE}")
endif()

execute_process(COMMAND ${ARPALINT} --root=${FIXTURES}/tree_bad src
                OUTPUT_VARIABLE bad_out ERROR_VARIABLE bad_err
                RESULT_VARIABLE bad_rc)
if(NOT bad_rc EQUAL 1)
  message(FATAL_ERROR "tree_bad: expected exit 1, got ${bad_rc}\n${bad_out}${bad_err}")
endif()
foreach(rule hot-path-alloc determinism layer-dag check-macros directive)
  if(NOT bad_out MATCHES "\\[${rule}\\]")
    message(FATAL_ERROR "tree_bad: rule ${rule} did not fire\n${bad_out}")
  endif()
endforeach()

execute_process(COMMAND ${ARPALINT} --root=${FIXTURES}/tree_ok src
                OUTPUT_VARIABLE ok_out ERROR_VARIABLE ok_err
                RESULT_VARIABLE ok_rc)
if(NOT ok_rc EQUAL 0)
  message(FATAL_ERROR "tree_ok: expected exit 0, got ${ok_rc}\n${ok_out}${ok_err}")
endif()

message(STATUS "arpalint fixtures: tree_bad fires every rule, tree_ok is clean")
