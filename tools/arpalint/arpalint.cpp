// arpalint: the project's in-tree static analyzer.
//
// A dependency-free lexical checker for the invariants this codebase's
// performance and reproducibility story rests on — properties clang-tidy
// has no checks for because they are project policy, not C++ hygiene:
//
//   hot-path-alloc   no allocating constructs inside ARPALINT-HOTPATH
//                    annotated regions (the simulator's per-event paths);
//                    util/alloc_guard.h is the runtime complement.
//   determinism      no wall-clock, no raw std random engines, no
//                    iteration over unordered containers, no pointer-keyed
//                    ordered containers under src/ — a seed must reproduce
//                    a run bit-for-bit (util/rng.h is the one RNG).
//   layer-dag        #include edges respect the subsystem DAG
//                    util -> core/stats -> net -> metrics -> routing ->
//                    traffic -> sim -> analysis/obs -> exp, with no
//                    include cycles.
//   check-macros     raw assert() is banned in src/ in favor of
//                    ARPA_CHECK/ARPA_DCHECK (src/util/check.h).
//   directive        the annotations themselves are well-formed (known
//                    rule names, non-empty reasons, balanced regions).
//
// Annotations (in comments):
//   // ARPALINT-HOTPATH                  rest of this file is a hot region
//   // ARPALINT-HOTPATH-BEGIN ... // ARPALINT-HOTPATH-END
//   // ARPALINT-ALLOW(rule): reason      suppress `rule` on this line and
//                                        the next one
//   // ARPALINT-LAYER(name): reason      this file belongs to layer `name`
//                                        for the DAG check (both as an
//                                        includer and as a target)
//
// The scanner is lexical, not semantic: comments and string/char literals
// are stripped (with raw-string awareness) before matching, so it cannot
// be fooled by banned names in text, but it also cannot see through
// indirection — a helper that allocates is invisible at its call site.
// That is by design: the static rule catches the direct offenders and
// documents intent; util::AllocGuard measures the runtime truth.
//
// Usage: arpalint [--root=DIR] [--json[=PATH]] [dir...]
//   Scans DIR-relative directories (default: src tools tests) for
//   .h/.hpp/.cpp/.cc files, skipping lint_fixtures/, .git/ and build*/
//   components. Exit 0 clean, 1 findings, 2 usage/IO error. Output —
//   both text and JSON — is byte-deterministic: findings are sorted by
//   (file, line, rule, message) and carry no timestamps or host state.

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace arpalint {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Findings

struct Finding {
  std::string file;  // root-relative, forward slashes
  int line = 0;      // 1-based
  std::string rule;
  std::string message;

  bool operator<(const Finding& o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    if (rule != o.rule) return rule < o.rule;
    return message < o.message;
  }
};

const std::set<std::string>& known_rules() {
  static const std::set<std::string> kRules{
      "hot-path-alloc", "determinism", "layer-dag", "check-macros",
      "directive"};
  return kRules;
}

// ---------------------------------------------------------------------------
// Layer model

int layer_rank(std::string_view layer) {
  static const std::map<std::string, int, std::less<>> kRanks{
      {"util", 0},    {"core", 1},    {"stats", 1}, {"net", 2},
      {"metrics", 3}, {"routing", 4}, {"traffic", 5}, {"sim", 6},
      {"analysis", 7}, {"obs", 7},    {"exp", 8},
  };
  const auto it = kRanks.find(layer);
  return it == kRanks.end() ? -1 : it->second;
}

// ---------------------------------------------------------------------------
// Lexical scrubbing: blank comments and string/char literals out of the
// code view (preserving line lengths so columns stay meaningful) while
// collecting each line's comment text for directive parsing.

struct ScrubbedFile {
  std::vector<std::string> raw;       // original lines
  std::vector<std::string> code;      // literals/comments blanked
  std::vector<std::string> comments;  // concatenated comment text per line
};

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

ScrubbedFile scrub(const std::vector<std::string>& lines) {
  ScrubbedFile out;
  out.raw = lines;
  out.code.reserve(lines.size());
  out.comments.resize(lines.size());

  enum class State { kNormal, kBlockComment, kRawString };
  State state = State::kNormal;
  std::string raw_delim;  // for kRawString: the ")delim" terminator

  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& line = lines[li];
    std::string code(line.size(), ' ');
    std::string& comment = out.comments[li];
    std::size_t i = 0;
    while (i < line.size()) {
      if (state == State::kBlockComment) {
        const std::size_t end = line.find("*/", i);
        if (end == std::string::npos) {
          comment.append(line, i, line.size() - i);
          i = line.size();
        } else {
          comment.append(line, i, end - i);
          i = end + 2;
          state = State::kNormal;
        }
        continue;
      }
      if (state == State::kRawString) {
        const std::size_t end = line.find(raw_delim, i);
        if (end == std::string::npos) {
          i = line.size();
        } else {
          i = end + raw_delim.size();
          code[i - 1] = '"';  // keep a token boundary where the string ended
          state = State::kNormal;
        }
        continue;
      }
      const char c = line[i];
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
        comment.append(line, i + 2, line.size() - i - 2);
        i = line.size();
        continue;
      }
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        state = State::kBlockComment;
        i += 2;
        continue;
      }
      if (c == '"') {
        // Raw string? The opening quote follows an R (possibly u8R/LR/uR).
        if (i > 0 && line[i - 1] == 'R' &&
            (i == 1 || !ident_char(line[i - 1 - 1]) || line[i - 2] == '8' ||
             line[i - 2] == 'u' || line[i - 2] == 'L' || line[i - 2] == 'U')) {
          const std::size_t paren = line.find('(', i + 1);
          if (paren != std::string::npos && paren - i - 1 <= 16) {
            raw_delim = ")" + line.substr(i + 1, paren - i - 1) + "\"";
            code[i] = '"';
            i = paren + 1;
            const std::size_t end = line.find(raw_delim, i);
            if (end == std::string::npos) {
              state = State::kRawString;
              i = line.size();
            } else {
              i = end + raw_delim.size();
              code[i - 1] = '"';
            }
            continue;
          }
        }
        // Ordinary string literal: blank to the closing quote (or EOL).
        code[i] = '"';
        ++i;
        while (i < line.size()) {
          if (line[i] == '\\') {
            i += 2;
            continue;
          }
          if (line[i] == '"') {
            code[i] = '"';
            ++i;
            break;
          }
          ++i;
        }
        continue;
      }
      if (c == '\'') {
        // Digit separator (1'000) or part of an identifier context: keep.
        if (i > 0 && ident_char(line[i - 1]) &&
            !(i >= 2 && !ident_char(line[i - 2]) &&
              (line[i - 1] == 'u' || line[i - 1] == 'L' ||
               line[i - 1] == 'U'))) {
          code[i] = c;
          ++i;
          continue;
        }
        code[i] = '\'';
        ++i;
        while (i < line.size()) {
          if (line[i] == '\\') {
            i += 2;
            continue;
          }
          if (line[i] == '\'') {
            code[i] = '\'';
            ++i;
            break;
          }
          ++i;
        }
        continue;
      }
      code[i] = c;
      ++i;
    }
    out.code.push_back(std::move(code));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Directives

struct Directives {
  // allow[line] = rules suppressed on that line and the next one (0-based).
  std::map<std::size_t, std::set<std::string>> allow;
  std::vector<bool> hot;  // per line (0-based)
  std::optional<std::string> layer_override;
  int layer_override_line = 0;  // 1-based, for reporting
};

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return std::string{s.substr(b, e - b)};
}

/// Parses "NAME(arg): reason" directive bodies. Returns false when the text
/// at `pos` does not start the expected shape at all.
bool parse_arg_directive(std::string_view text, std::size_t pos,
                         std::size_t name_len, std::string& arg,
                         std::string& reason, std::string& problem) {
  std::size_t i = pos + name_len;
  if (i >= text.size() || text[i] != '(') {
    problem = "expected '(' after directive name";
    return true;
  }
  const std::size_t close = text.find(')', i);
  if (close == std::string_view::npos) {
    problem = "unterminated '(' in directive";
    return true;
  }
  arg = trim(text.substr(i + 1, close - i - 1));
  i = close + 1;
  if (i >= text.size() || text[i] != ':') {
    problem = "missing ': reason' after directive";
    return true;
  }
  reason = trim(text.substr(i + 1));
  if (reason.empty()) {
    problem = "empty reason after directive";
  }
  return true;
}

Directives parse_directives(const ScrubbedFile& sf, const std::string& rel,
                            std::vector<Finding>& findings) {
  Directives d;
  d.hot.assign(sf.comments.size(), false);

  bool whole_file_hot_from = false;
  std::size_t whole_file_hot_start = 0;
  constexpr std::size_t kNoRegion = static_cast<std::size_t>(-1);
  std::size_t region_begin = kNoRegion;  // open HOTPATH-BEGIN line

  for (std::size_t li = 0; li < sf.comments.size(); ++li) {
    // A directive must be the first token of its comment; prose that merely
    // mentions one (docs, this tool's own header) is not a directive.
    const std::string trimmed = trim(sf.comments[li]);
    const int line_no = static_cast<int>(li) + 1;
    if (trimmed.rfind("ARPALINT-", 0) == 0) {
      const std::string_view rest{trimmed};
      if (rest.rfind("ARPALINT-HOTPATH-BEGIN", 0) == 0) {
        if (region_begin != kNoRegion) {
          findings.push_back({rel, line_no, "directive",
                              "nested ARPALINT-HOTPATH-BEGIN (previous "
                              "region still open)"});
        } else {
          region_begin = li;
        }
      } else if (rest.rfind("ARPALINT-HOTPATH-END", 0) == 0) {
        if (region_begin == kNoRegion) {
          findings.push_back({rel, line_no, "directive",
                              "ARPALINT-HOTPATH-END without a matching "
                              "BEGIN"});
        } else {
          for (std::size_t k = region_begin; k <= li; ++k) d.hot[k] = true;
          region_begin = kNoRegion;
        }
      } else if (rest.rfind("ARPALINT-HOTPATH", 0) == 0) {
        if (!whole_file_hot_from) {
          whole_file_hot_from = true;
          whole_file_hot_start = li;
        }
      } else if (rest.rfind("ARPALINT-ALLOW", 0) == 0) {
        std::string rule, reason, problem;
        parse_arg_directive(rest, 0, 14, rule, reason, problem);
        if (!problem.empty()) {
          findings.push_back(
              {rel, line_no, "directive", "ARPALINT-ALLOW: " + problem});
        } else if (known_rules().count(rule) == 0) {
          findings.push_back({rel, line_no, "directive",
                              "ARPALINT-ALLOW names unknown rule '" + rule +
                                  "'"});
        } else {
          d.allow[li].insert(rule);
        }
      } else if (rest.rfind("ARPALINT-LAYER", 0) == 0) {
        std::string layer, reason, problem;
        parse_arg_directive(rest, 0, 14, layer, reason, problem);
        if (!problem.empty()) {
          findings.push_back(
              {rel, line_no, "directive", "ARPALINT-LAYER: " + problem});
        } else if (layer_rank(layer) < 0) {
          findings.push_back({rel, line_no, "directive",
                              "ARPALINT-LAYER names unknown layer '" + layer +
                                  "'"});
        } else if (d.layer_override.has_value()) {
          findings.push_back({rel, line_no, "directive",
                              "duplicate ARPALINT-LAYER override"});
        } else {
          d.layer_override = layer;
          d.layer_override_line = line_no;
        }
      } else {
        findings.push_back({rel, line_no, "directive",
                            "unrecognized ARPALINT- directive"});
      }
    }
  }

  if (region_begin != kNoRegion) {
    findings.push_back({rel, static_cast<int>(region_begin) + 1, "directive",
                        "ARPALINT-HOTPATH-BEGIN without a matching END "
                        "(region extends to end of file)"});
    for (std::size_t k = region_begin; k < d.hot.size(); ++k) d.hot[k] = true;
  }
  if (whole_file_hot_from) {
    for (std::size_t k = whole_file_hot_start; k < d.hot.size(); ++k) {
      d.hot[k] = true;
    }
  }
  return d;
}

bool allowed(const Directives& d, std::size_t li, const char* rule) {
  const auto covers = [&](std::size_t k) {
    const auto it = d.allow.find(k);
    return it != d.allow.end() && it->second.count(rule) > 0;
  };
  return covers(li) || (li > 0 && covers(li - 1));
}

// ---------------------------------------------------------------------------
// Token matching helpers (on scrubbed code lines)

/// Finds identifier `name` at a word boundary, optionally requiring an
/// immediately following '(' (after optional spaces). `from` advances.
std::size_t find_ident(const std::string& code, const std::string& name,
                       std::size_t from, bool must_call) {
  std::size_t pos = from;
  while ((pos = code.find(name, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !ident_char(code[pos - 1]);
    const std::size_t end = pos + name.size();
    const bool right_ok = end >= code.size() || !ident_char(code[end]);
    if (left_ok && right_ok) {
      if (!must_call) return pos;
      std::size_t j = end;
      while (j < code.size() && code[j] == ' ') ++j;
      if (j < code.size() && code[j] == '(') return pos;
    }
    pos += 1;
  }
  return std::string::npos;
}

/// True for preprocessor lines (`#include <ctime>` must not trip the
/// determinism identifier scan).
bool is_preproc(const std::string& code) {
  std::size_t i = 0;
  while (i < code.size() && (code[i] == ' ' || code[i] == '\t')) ++i;
  return i < code.size() && code[i] == '#';
}

bool preceded_by_member_access(const std::string& code, std::size_t pos) {
  std::size_t j = pos;
  while (j > 0 && code[j - 1] == ' ') --j;
  if (j == 0) return false;
  if (code[j - 1] == '.') return true;
  return j >= 2 && code[j - 2] == '-' && code[j - 1] == '>';
}

// ---------------------------------------------------------------------------
// Per-file scanned representation

struct FileInfo {
  std::string rel;  // root-relative path with forward slashes
  ScrubbedFile src;
  Directives dirs;
  // (line index, target path) for every #include "src/..." in the file.
  std::vector<std::pair<std::size_t, std::string>> src_includes;
};

bool under(const std::string& rel, const char* prefix) {
  return rel.rfind(prefix, 0) == 0;
}

std::string first_component_after_src(const std::string& path) {
  // "src/<layer>/..." -> "<layer>"
  const std::size_t a = 4;
  const std::size_t b = path.find('/', a);
  if (b == std::string::npos) return "";
  return path.substr(a, b - a);
}

// ---------------------------------------------------------------------------
// Rule: hot-path-alloc

void check_hot_path_alloc(const FileInfo& f, std::vector<Finding>& out) {
  static const std::vector<std::string> kBannedCalls{
      "malloc", "calloc", "realloc", "strdup", "aligned_alloc"};
  static const std::vector<std::string> kBannedTypes{
      "std::function", "std::shared_ptr", "std::make_shared",
      "std::make_unique"};
  static const std::vector<std::string> kAllocMembers{
      "push_back", "emplace_back", "push_front", "emplace_front", "insert",
      "emplace",   "resize",       "reserve",    "assign",        "append",
      "push"};

  for (std::size_t li = 0; li < f.src.code.size(); ++li) {
    if (!f.dirs.hot[li]) continue;
    const std::string& code = f.src.code[li];
    const int line_no = static_cast<int>(li) + 1;
    const auto report = [&](const std::string& what) {
      if (!allowed(f.dirs, li, "hot-path-alloc")) {
        out.push_back({f.rel, line_no, "hot-path-alloc", what});
      }
    };

    // operator new (placement new — `new (addr) T` — is exempt).
    std::size_t pos = 0;
    while ((pos = find_ident(code, "new", pos, false)) != std::string::npos) {
      std::size_t j = pos + 3;
      while (j < code.size() && code[j] == ' ') ++j;
      if (j >= code.size() || code[j] != '(') {
        report("operator new in a hot region");
      }
      pos += 3;
    }
    for (const std::string& fn : kBannedCalls) {
      if (find_ident(code, fn, 0, true) != std::string::npos) {
        report(fn + "() in a hot region");
      }
    }
    for (const std::string& ty : kBannedTypes) {
      if (code.find(ty) != std::string::npos) {
        report(ty + " in a hot region (allocates a control block or may "
                    "allocate per call)");
      }
    }
    for (const std::string& m : kAllocMembers) {
      std::size_t p = 0;
      while ((p = find_ident(code, m, p, true)) != std::string::npos) {
        if (preceded_by_member_access(code, p)) {
          report("." + m + "() may allocate in a hot region");
          break;
        }
        p += m.size();
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: determinism

void check_determinism(const FileInfo& f, std::vector<Finding>& out) {
  if (!under(f.rel, "src/")) return;

  static const std::vector<std::pair<std::string, std::string>> kBannedIds{
      {"rand", "rand() is seed-uncontrolled; use util::Rng streams"},
      {"srand", "srand() is global state; use util::Rng streams"},
      {"random_device", "std::random_device is nondeterministic; use "
                        "util::Rng streams"},
      {"mt19937", "raw std engines bypass the seeded stream discipline; use "
                  "util::Rng"},
      {"mt19937_64", "raw std engines bypass the seeded stream discipline; "
                     "use util::Rng"},
      {"default_random_engine", "raw std engines bypass the seeded stream "
                                "discipline; use util::Rng"},
      {"minstd_rand", "raw std engines bypass the seeded stream discipline; "
                      "use util::Rng"},
      {"gettimeofday", "wall clock in simulation code breaks reproducibility"},
      {"clock_gettime", "wall clock in simulation code breaks "
                        "reproducibility"},
      {"system_clock", "wall clock in simulation code breaks reproducibility "
                       "(steady_clock is fine for stopwatches)"},
      {"localtime", "wall clock in simulation code breaks reproducibility"},
      {"gmtime", "wall clock in simulation code breaks reproducibility"},
      {"ctime", "wall clock in simulation code breaks reproducibility"},
  };

  // Collect names of declared unordered containers (file-local heuristic:
  // the last identifier of the declaration statement).
  std::vector<std::string> unordered_names;
  for (std::size_t li = 0; li < f.src.code.size(); ++li) {
    const std::string& code = f.src.code[li];
    for (const char* kw : {"unordered_map<", "unordered_set<"}) {
      const std::size_t at = code.find(kw);
      if (at == std::string::npos) continue;
      // Join the statement up to its terminating ';' (max 5 lines).
      std::string stmt = code.substr(at);
      for (std::size_t k = li + 1; k < f.src.code.size() && k < li + 5 &&
                                   stmt.find(';') == std::string::npos;
           ++k) {
        stmt += " " + f.src.code[k];
      }
      const std::size_t semi = stmt.find(';');
      if (semi == std::string::npos) continue;
      // Walk back over default-initializers to the declared identifier.
      std::size_t e = semi;
      while (e > 0 && (stmt[e - 1] == ' ' || stmt[e - 1] == '}' ||
                       stmt[e - 1] == '{')) {
        --e;
      }
      std::size_t b = e;
      while (b > 0 && ident_char(stmt[b - 1])) --b;
      if (e > b) unordered_names.push_back(stmt.substr(b, e - b));
    }
  }
  std::sort(unordered_names.begin(), unordered_names.end());
  unordered_names.erase(
      std::unique(unordered_names.begin(), unordered_names.end()),
      unordered_names.end());

  for (std::size_t li = 0; li < f.src.code.size(); ++li) {
    const std::string& code = f.src.code[li];
    if (is_preproc(code)) continue;
    const int line_no = static_cast<int>(li) + 1;
    const auto report = [&](const std::string& what) {
      if (!allowed(f.dirs, li, "determinism")) {
        out.push_back({f.rel, line_no, "determinism", what});
      }
    };

    for (const auto& [id, why] : kBannedIds) {
      std::size_t p = 0;
      while ((p = find_ident(code, id, p, false)) != std::string::npos) {
        if (!preceded_by_member_access(code, p)) {
          report(id + ": " + why);
          break;
        }
        p += id.size();
      }
    }
    // Bare time(...) — not a member call, not part of another identifier.
    {
      std::size_t p = 0;
      while ((p = find_ident(code, "time", p, true)) != std::string::npos) {
        if (!preceded_by_member_access(code, p)) {
          report("time(): wall clock in simulation code breaks "
                 "reproducibility");
          break;
        }
        p += 4;
      }
    }
    // Iteration over a declared unordered container.
    for (const std::string& name : unordered_names) {
      bool iterates = false;
      for (const char* suffix : {".begin(", ".cbegin(", ".rbegin("}) {
        if (code.find(name + suffix) != std::string::npos) iterates = true;
      }
      const std::size_t forp = code.find("for ");
      const std::size_t forp2 = code.find("for(");
      if (forp != std::string::npos || forp2 != std::string::npos) {
        for (const std::string& pat :
             {": " + name + ")", ":" + name + ")", ": " + name + " )"}) {
          if (code.find(pat) != std::string::npos) iterates = true;
        }
      }
      if (iterates) {
        report("iteration over unordered container '" + name +
               "' is order-nondeterministic");
      }
    }
    // Pointer-keyed ordered containers: std::map</std::set< with a '*' in
    // the key type (pointer order is allocation order — nondeterministic).
    for (const char* kw : {"std::map<", "std::set<"}) {
      const std::size_t at = code.find(kw);
      if (at == std::string::npos) continue;
      std::string stmt = code.substr(at + std::string_view{kw}.size());
      for (std::size_t k = li + 1;
           k < f.src.code.size() && k < li + 4 && stmt.find(';') == std::string::npos;
           ++k) {
        stmt += " " + f.src.code[k];
      }
      int depth = 0;
      bool star = false;
      for (const char ch : stmt) {
        if (ch == '<') ++depth;
        if (ch == '>') {
          if (depth == 0) break;
          --depth;
        }
        if (ch == ',' && depth == 0) break;
        if (ch == '*' && depth == 0) star = true;
      }
      if (star) {
        report(std::string{kw} +
               "...> keyed by pointer: iteration order follows allocation "
               "order");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: check-macros

void check_macros(const FileInfo& f, std::vector<Finding>& out) {
  if (!under(f.rel, "src/")) return;
  for (std::size_t li = 0; li < f.src.code.size(); ++li) {
    const std::string& code = f.src.code[li];
    if (is_preproc(code)) continue;
    if (find_ident(code, "assert", 0, true) != std::string::npos &&
        !allowed(f.dirs, li, "check-macros")) {
      out.push_back({f.rel, static_cast<int>(li) + 1, "check-macros",
                     "raw assert(); use ARPA_CHECK/ARPA_DCHECK "
                     "(src/util/check.h)"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: layer-dag

std::string effective_layer(const FileInfo& f) {
  if (f.dirs.layer_override.has_value()) return *f.dirs.layer_override;
  return first_component_after_src(f.rel);
}

void check_layer_dag(const std::vector<FileInfo>& files,
                     std::vector<Finding>& out) {
  std::map<std::string, const FileInfo*> by_rel;
  for (const FileInfo& f : files) by_rel.emplace(f.rel, &f);

  for (const FileInfo& f : files) {
    if (!under(f.rel, "src/")) continue;
    const std::string layer = effective_layer(f);
    const int rank = layer_rank(layer);
    if (rank < 0) {
      out.push_back({f.rel, 1, "layer-dag",
                     "file is in unknown layer '" + layer +
                         "' (add it to the DAG or move the file)"});
      continue;
    }
    for (const auto& [li, target] : f.src_includes) {
      std::string tlayer;
      const auto it = by_rel.find(target);
      if (it != by_rel.end()) {
        tlayer = effective_layer(*it->second);
      } else {
        tlayer = first_component_after_src(target);
      }
      const int trank = layer_rank(tlayer);
      const int line_no = static_cast<int>(li) + 1;
      if (trank < 0) {
        if (!allowed(f.dirs, li, "layer-dag")) {
          out.push_back({f.rel, line_no, "layer-dag",
                         "include of unknown layer '" + tlayer + "' (" +
                             target + ")"});
        }
        continue;
      }
      if (trank > rank && !allowed(f.dirs, li, "layer-dag")) {
        out.push_back(
            {f.rel, line_no, "layer-dag",
             layer + " (rank " + std::to_string(rank) + ") includes upward " +
                 tlayer + " (rank " + std::to_string(trank) + "): " + target});
      }
    }
  }

  // File-level include cycles among the scanned src/ files.
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::string> stack;
  std::vector<Finding>* sink = &out;

  const std::function<void(const FileInfo&)> dfs = [&](const FileInfo& f) {
    color[f.rel] = 1;
    stack.push_back(f.rel);
    for (const auto& [li, target] : f.src_includes) {
      const auto it = by_rel.find(target);
      if (it == by_rel.end()) continue;
      const int c = color[target];
      if (c == 1) {
        std::string cyc = target;
        for (auto s = std::find(stack.begin(), stack.end(), target);
             s != stack.end(); ++s) {
          if (*s != target) cyc += " -> " + *s;
        }
        cyc += " -> " + target;
        sink->push_back({f.rel, static_cast<int>(li) + 1, "layer-dag",
                         "include cycle: " + cyc});
      } else if (c == 0) {
        dfs(*it->second);
      }
    }
    stack.pop_back();
    color[f.rel] = 2;
  };
  for (const FileInfo& f : files) {
    if (under(f.rel, "src/") && color[f.rel] == 0) dfs(f);
  }
}

// ---------------------------------------------------------------------------
// Scanning

bool skip_dir(const std::string& name) {
  return name == ".git" || name == "lint_fixtures" ||
         name.rfind("build", 0) == 0;
}

bool lintable_ext(const fs::path& p) {
  const std::string e = p.extension().string();
  return e == ".h" || e == ".hpp" || e == ".cpp" || e == ".cc";
}

void collect(const fs::path& root, const fs::path& dir,
             std::vector<fs::path>& files) {
  std::vector<fs::path> entries;
  for (const auto& de : fs::directory_iterator(root / dir)) {
    entries.push_back(de.path());
  }
  std::sort(entries.begin(), entries.end());
  for (const fs::path& p : entries) {
    if (fs::is_directory(p)) {
      if (!skip_dir(p.filename().string())) {
        collect(root, dir / p.filename(), files);
      }
    } else if (lintable_ext(p)) {
      files.push_back(dir / p.filename());
    }
  }
}

std::optional<FileInfo> load_file(const fs::path& root, const fs::path& rel,
                                  std::vector<Finding>& findings) {
  std::ifstream in{root / rel};
  if (!in) return std::nullopt;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(line);
  }
  FileInfo f;
  f.rel = rel.generic_string();
  f.src = scrub(lines);
  f.dirs = parse_directives(f.src, f.rel, findings);
  for (std::size_t li = 0; li < f.src.raw.size(); ++li) {
    const std::string& raw = f.src.raw[li];
    std::size_t i = 0;
    while (i < raw.size() && (raw[i] == ' ' || raw[i] == '\t')) ++i;
    if (raw.compare(i, 8, "#include") != 0) continue;
    const std::size_t q1 = raw.find('"', i + 8);
    if (q1 == std::string::npos) continue;
    const std::size_t q2 = raw.find('"', q1 + 1);
    if (q2 == std::string::npos) continue;
    const std::string target = raw.substr(q1 + 1, q2 - q1 - 1);
    if (target.rfind("src/", 0) == 0) f.src_includes.emplace_back(li, target);
  }
  return f;
}

// ---------------------------------------------------------------------------
// Output

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_json(std::ostream& os, const std::vector<Finding>& findings) {
  os << "{\n  \"tool\": \"arpalint\",\n  \"count\": " << findings.size()
     << ",\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"file\": \"" << json_escape(f.file)
       << "\", \"line\": " << f.line << ", \"rule\": \"" << json_escape(f.rule)
       << "\", \"message\": \"" << json_escape(f.message) << "\"}";
  }
  os << (findings.empty() ? "]\n}\n" : "\n  ]\n}\n");
}

}  // namespace arpalint

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  using arpalint::Finding;

  fs::path root = ".";
  bool json = false;
  std::string json_path;  // empty = stdout
  std::vector<std::string> dirs;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      root = fs::path{std::string{arg.substr(7)}};
    } else if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json = true;
      json_path = std::string{arg.substr(7)};
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: arpalint [--root=DIR] [--json[=PATH]] [dir...]\n"
                   "Scans DIR-relative directories (default: src tools "
                   "tests).\nExit: 0 clean, 1 findings, 2 usage/IO error.\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "arpalint: unknown flag " << arg << "\n";
      return 2;
    } else {
      dirs.emplace_back(arg);
    }
  }
  if (dirs.empty()) dirs = {"src", "tools", "tests"};

  std::vector<fs::path> rel_files;
  for (const std::string& d : dirs) {
    if (!fs::is_directory(root / d)) {
      std::cerr << "arpalint: " << (root / d).string()
                << " is not a directory\n";
      return 2;
    }
    arpalint::collect(root, d, rel_files);
  }
  std::sort(rel_files.begin(), rel_files.end());

  std::vector<Finding> findings;
  std::vector<arpalint::FileInfo> files;
  files.reserve(rel_files.size());
  for (const fs::path& rel : rel_files) {
    auto f = arpalint::load_file(root, rel, findings);
    if (!f.has_value()) {
      std::cerr << "arpalint: cannot read " << (root / rel).string() << "\n";
      return 2;
    }
    files.push_back(std::move(*f));
  }

  for (const arpalint::FileInfo& f : files) {
    arpalint::check_hot_path_alloc(f, findings);
    arpalint::check_determinism(f, findings);
    arpalint::check_macros(f, findings);
  }
  arpalint::check_layer_dag(files, findings);

  std::sort(findings.begin(), findings.end());
  findings.erase(std::unique(findings.begin(), findings.end(),
                             [](const Finding& a, const Finding& b) {
                               return a.file == b.file && a.line == b.line &&
                                      a.rule == b.rule &&
                                      a.message == b.message;
                             }),
                 findings.end());

  if (json) {
    if (json_path.empty()) {
      arpalint::write_json(std::cout, findings);
    } else {
      std::ofstream out{json_path, std::ios::binary};
      if (!out) {
        std::cerr << "arpalint: cannot write " << json_path << "\n";
        return 2;
      }
      arpalint::write_json(out, findings);
    }
  }
  if (!json || !json_path.empty()) {
    for (const Finding& f : findings) {
      std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
                << f.message << "\n";
    }
    std::cout << "arpalint: " << files.size() << " files, "
              << findings.size() << " finding"
              << (findings.size() == 1 ? "" : "s") << "\n";
  }
  return findings.empty() ? 0 : 1;
}
