// metric_explorer: inspect and tune metric maps without writing code.
//
// Usage:
//   metric_explorer [--line-type=56kb-terrestrial] [--prop-ms=10]
//                   [--base-min=30] [--max-cost=90] [--threshold=0.5]
//                   [--steps=20] [--dot-topology=arpanet87]
//
// Prints, for the chosen line and (optionally overridden) HNM parameters:
// the D-SPF and HN-SPF cost maps over utilization, the derived movement
// limits, and the hop-normalized view. With --dot-topology it instead emits
// a Graphviz map of the named built-in topology to stdout.

#include <cstdio>
#include <iostream>

#include "src/analysis/metric_map.h"
#include "src/net/builders/builders.h"
#include "src/net/dot_export.h"
#include "src/net/topology_io.h"
#include "src/util/flags.h"

namespace {

using namespace arpanet;

int run(const util::Flags& flags) {
  if (const auto topo_name = flags.get("dot-topology")) {
    net::Topology topo;
    if (*topo_name == "arpanet87") {
      topo = net::builders::arpanet87().topo;
    } else if (*topo_name == "milnet") {
      topo = net::builders::milnet_like();
    } else if (*topo_name == "two-region") {
      topo = net::builders::two_region().topo;
    } else {
      std::fprintf(stderr, "unknown topology %s\n", topo_name->c_str());
      return 2;
    }
    net::write_dot(std::cout, topo);
    return 0;
  }

  const net::LineType type =
      net::line_type_from_string(flags.get_string("line-type", "56kb-terrestrial"));
  const auto prop = util::SimTime::from_ms(
      flags.get_double("prop-ms", net::info(type).default_prop_delay.ms()));

  auto params = core::LineParamsTable::arpanet_defaults();
  core::LineTypeParams p = params.for_type(type);
  p.base_min = flags.get_double("base-min", p.base_min);
  p.max_cost = flags.get_double("max-cost", p.max_cost);
  p.flat_threshold = flags.get_double("threshold", p.flat_threshold);
  params.set(type, p);
  const long steps = flags.get_long("steps", 20);

  for (const std::string& u : flags.unknown()) {
    std::fprintf(stderr, "unknown flag --%s\n", u.c_str());
    return 2;
  }

  const core::HnMetric hnm{p, net::info(type).rate, prop};
  const analysis::MetricMap hn{metrics::MetricKind::kHnSpf, type, params, prop};
  const analysis::MetricMap dspf{metrics::MetricKind::kDspf, type, params, prop};

  std::printf("line %s, propagation %.1f ms\n",
              std::string(net::to_string(type)).c_str(), prop.ms());
  std::printf("HNM parameters: min %.1f (base %.1f), max %.1f, flat to %.0f%%\n",
              hnm.min_cost(), p.base_min, p.max_cost, 100 * p.flat_threshold);
  std::printf("movement: up %.1f, down %.1f, update threshold %.1f units\n\n",
              p.up_limit(), p.down_limit(), p.change_threshold());
  std::printf(" util   HN-units  HN-hops   D-SPF-units  D-SPF-hops\n");
  for (long i = 0; i <= steps; ++i) {
    const double u = static_cast<double>(i) / static_cast<double>(steps);
    std::printf("%5.2f  %9.1f %8.2f   %11.1f %11.2f\n", u, hn.cost(u),
                hn.normalized_cost(u), dspf.cost(u), dspf.normalized_cost(u));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(util::Flags{argc, argv});
  } catch (const std::exception& e) {
    std::fprintf(stderr, "metric_explorer: %s\n", e.what());
    return 1;
  }
}
