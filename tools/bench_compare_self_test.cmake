# CLI smoke test: a smoke-battery document must compare clean against
# itself through the bench_compare binary (exit 0, OK on stdout).
execute_process(
  COMMAND ${BENCH_REPORT} --scenario=smoke --threads=1
          --out=${CMAKE_CURRENT_BINARY_DIR}/bench_compare_self.json
  RESULT_VARIABLE report_rc)
if(NOT report_rc EQUAL 0)
  message(FATAL_ERROR "bench_report failed with ${report_rc}")
endif()

execute_process(
  COMMAND ${BENCH_COMPARE}
          --baseline=${CMAKE_CURRENT_BINARY_DIR}/bench_compare_self.json
          --current=${CMAKE_CURRENT_BINARY_DIR}/bench_compare_self.json
  OUTPUT_VARIABLE out
  RESULT_VARIABLE compare_rc)
if(NOT compare_rc EQUAL 0)
  message(FATAL_ERROR "bench_compare failed with ${compare_rc}: ${out}")
endif()
if(NOT out MATCHES "OK")
  message(FATAL_ERROR "bench_compare did not report OK: ${out}")
endif()
