// bench_report: runs a fixed benchmark battery and writes the
// schema-versioned BENCH_metrics.json document (src/obs/bench_report.h).
//
//   bench_report                          # full battery -> BENCH_metrics.json
//   bench_report --scenario=smoke         # the golden-test battery
//   bench_report --threads=4 --out=-      # explicit workers, JSON to stdout
//   bench_report --scenario=smoke --threads=1 --mask
//       --out=tests/golden/bench_smoke.json   # regenerate the golden file
//
// Exits nonzero (with the violations on stderr) when the report fails its
// own schema validation — the CI bench-smoke job relies on that.

#include <fstream>
#include <iostream>
#include <string>

#include "src/obs/bench_report.h"
#include "src/util/flags.h"

int main(int argc, char** argv) {
  using namespace arpanet;

  const util::Flags flags{argc, argv};
  const std::string battery = flags.get_string("scenario", "battery");
  const int threads = static_cast<int>(flags.get_long("threads", 0));
  const std::string out_path = flags.get_string("out", "BENCH_metrics.json");
  const bool mask = flags.get_bool("mask");
  for (const std::string& f : flags.unknown()) {
    std::cerr << "bench_report: unknown flag --" << f << "\n";
    return 2;
  }

  obs::BenchReport report;
  try {
    report = obs::run_bench_battery(battery, threads);
  } catch (const std::exception& e) {
    std::cerr << "bench_report: " << e.what() << "\n";
    return 2;
  }

  const std::string json =
      mask ? obs::mask_wall_time_fields(report.json()) : report.json();
  if (out_path == "-") {
    std::cout << json;
  } else {
    std::ofstream out{out_path};
    if (!out) {
      std::cerr << "bench_report: cannot open " << out_path << "\n";
      return 2;
    }
    out << json;
    std::cerr << "bench_report: wrote " << out_path << " (" << report.cells.size()
              << " cells, " << report.elapsed_sec << "s)\n";
  }

  const std::vector<std::string> errors = report.validate();
  if (!errors.empty()) {
    std::cerr << "bench_report: schema validation failed:\n";
    for (const std::string& e : errors) std::cerr << "  " << e << "\n";
    return 1;
  }
  return 0;
}
